(* Determinism and equivalence of the parallel batch scheduler (Parsolve):
   sharding a batch across domains, at any jobs/rounds setting, must
   return exactly the sequential engine's answers; merging per-domain
   DYNSUM caches must never change an answer; traces written through the
   shared writer must interleave whole lines only.

   All runs use a budget generous enough that every query resolves: a
   resolved demand query is the exact CFL answer and hence independent of
   sharding and cache warmth, which is what makes cross-jobs equality a
   deterministic property rather than a flaky one. *)

module Hstack = Pts_util.Hstack
module Client = Pts_clients.Client
module Pipeline = Pts_clients.Pipeline
module Suite = Pts_workload.Suite

let conf = Engine.conf ~budget_limit:10_000_000 ~max_field_depth:4 ()

let pl = lazy (Suite.pipeline "jack")

let queries = lazy (Pts_clients.Safecast.queries (Lazy.force pl))

let qarr () =
  Array.of_list (List.map (fun q -> Parsolve.query q.Client.q_node) (Lazy.force queries))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------- parallel == sequential, per engine ------------------- *)

let test_engine_jobs_equal engine_name () =
  let pl = Lazy.force pl in
  let seq = Engine.create ~conf engine_name pl.Pipeline.pag in
  let expected =
    List.map (fun q -> seq.Engine.points_to q.Client.q_node) (Lazy.force queries)
  in
  List.iter
    (fun schedule ->
      List.iter
        (fun jobs ->
          let r =
            Parsolve.run ~conf ~jobs ~schedule ~engine:engine_name pl.Pipeline.pag (qarr ())
          in
          List.iteri
            (fun i expect ->
              if not (Query.equal_outcome expect r.Parsolve.outcomes.(i)) then
                Alcotest.failf "%s: query %d differs from sequential at jobs=%d schedule=%s"
                  engine_name i jobs
                  (Parsolve.schedule_name schedule))
            expected)
        [ 1; 2; 4 ])
    [ Parsolve.Static; Parsolve.Steal ]

let test_rounds_equal () =
  let pl = Lazy.force pl in
  let seq = Engine.create ~conf "dynsum" pl.Pipeline.pag in
  let expected =
    List.map (fun q -> seq.Engine.points_to q.Client.q_node) (Lazy.force queries)
  in
  let r = Parsolve.run ~conf ~jobs:2 ~rounds:3 ~engine:"dynsum" pl.Pipeline.pag (qarr ()) in
  Alcotest.(check bool) "summaries were merged" true (r.Parsolve.merged_summaries > 0);
  Alcotest.(check int) "one report per (round, domain)" 6 (List.length r.Parsolve.reports);
  List.iteri
    (fun i expect ->
      if not (Query.equal_outcome expect r.Parsolve.outcomes.(i)) then
        Alcotest.failf "dynsum: query %d differs from sequential at jobs=2 rounds=3" i)
    expected

(* ----------------------- scheduler accounting ----------------------------- *)

let test_steal_accounting () =
  let pl = Lazy.force pl in
  let n = Array.length (qarr ()) in
  let r =
    Parsolve.run ~conf ~jobs:4 ~rounds:2 ~schedule:Parsolve.Steal ~engine:"dynsum"
      pl.Pipeline.pag (qarr ())
  in
  Alcotest.(check string) "schedule recorded" "steal" (Parsolve.schedule_name r.Parsolve.schedule);
  Alcotest.(check int) "one prediction per query" n (Array.length r.Parsolve.predicted_steps);
  Alcotest.(check int) "one actual cost per query" n (Array.length r.Parsolve.actual_steps);
  Array.iter
    (fun p ->
      if p < Costmodel.fastpath_cost then Alcotest.failf "prediction %d below fast path" p)
    r.Parsolve.predicted_steps;
  let report_steals =
    List.fold_left (fun acc d -> acc + d.Parsolve.dr_steals) 0 r.Parsolve.reports
  in
  Alcotest.(check int) "per-domain steals sum to the total" r.Parsolve.steals report_steals;
  let report_queries =
    List.fold_left (fun acc d -> acc + d.Parsolve.dr_queries) 0 r.Parsolve.reports
  in
  Alcotest.(check int) "every query answered exactly once" n report_queries;
  Alcotest.(check bool) "unique summaries bounded by derivations" true
    (r.Parsolve.unique_summaries <= r.Parsolve.merged_summaries);
  Alcotest.(check int) "final pool length matches the count"
    r.Parsolve.unique_summaries
    (Dynsum.snapshot_length r.Parsolve.summaries);
  let c = r.Parsolve.cost_corr in
  Alcotest.(check bool) "correlation in range or undefined" true
    (Float.is_nan c || (c >= -1.000001 && c <= 1.000001))

let test_schedule_of_string () =
  Alcotest.(check bool) "steal parses" true
    (Parsolve.schedule_of_string "steal" = Some Parsolve.Steal);
  Alcotest.(check bool) "static parses" true
    (Parsolve.schedule_of_string "static" = Some Parsolve.Static);
  Alcotest.(check bool) "garbage rejected" true (Parsolve.schedule_of_string "lifo" = None)

(* --------------------- cache merging preserves answers -------------------- *)

let test_snapshot_merge_preserves_answers () =
  let pl = Lazy.force pl in
  let pag = pl.Pipeline.pag in
  let qs = Lazy.force queries in
  let half1 = List.filteri (fun i _ -> i mod 2 = 0) qs in
  let half2 = List.filteri (fun i _ -> i mod 2 = 1) qs in
  let d1 = Dynsum.create ~conf pag and d2 = Dynsum.create ~conf pag in
  List.iter (fun q -> ignore (Dynsum.points_to d1 q.Client.q_node)) half1;
  List.iter (fun q -> ignore (Dynsum.points_to d2 q.Client.q_node)) half2;
  let merged = Dynsum.snapshot_union [ Dynsum.snapshot d1; Dynsum.snapshot d2 ] in
  Alcotest.(check bool) "union is non-empty" true (Dynsum.snapshot_length merged > 0);
  let seeded = Dynsum.create ~conf pag in
  Alcotest.(check bool) "absorb adds entries" true (Dynsum.absorb seeded merged > 0);
  let fresh = Dynsum.create ~conf pag in
  List.iter
    (fun q ->
      let a = Dynsum.points_to seeded q.Client.q_node in
      let b = Dynsum.points_to fresh q.Client.q_node in
      if not (Query.equal_outcome a b) then
        Alcotest.failf "merged cache changed the answer for %s" q.Client.q_desc)
    qs

let test_snapshot_union_is_idempotent () =
  let pl = Lazy.force pl in
  let d = Dynsum.create ~conf pl.Pipeline.pag in
  List.iter (fun q -> ignore (Dynsum.points_to d q.Client.q_node)) (Lazy.force queries);
  let s = Dynsum.snapshot d in
  Alcotest.(check int) "union with itself adds nothing"
    (Dynsum.snapshot_length (Dynsum.snapshot_union [ s ]))
    (Dynsum.snapshot_length (Dynsum.snapshot_union [ s; s; s ]))

(* ------------------ cache bytes are schedule-independent ------------------ *)

(* Absorb a snapshot into a fresh engine and serialise its cache;
   snapshots are sorted and base-tier memos are never exported, so the
   bytes must not depend on how the batch was scheduled. *)
let save_bytes snapshot =
  let pl = Lazy.force pl in
  let d = Dynsum.create ~conf pl.Pipeline.pag in
  ignore (Dynsum.absorb d snapshot);
  let path = Filename.temp_file "ptsto_cache" ".bin" in
  Dynsum.save_cache d path;
  let ic = open_in_bin path in
  let b = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  b

let test_cache_bytes_schedule_independent () =
  let pl = Lazy.force pl in
  let seqd = Dynsum.create ~conf pl.Pipeline.pag in
  List.iter (fun q -> ignore (Dynsum.points_to seqd q.Client.q_node)) (Lazy.force queries);
  let seq_bytes = save_bytes (Dynsum.snapshot seqd) in
  Alcotest.(check bool) "sequential cache is non-trivial" true (String.length seq_bytes > 0);
  List.iter
    (fun schedule ->
      let name = Parsolve.schedule_name schedule in
      let r =
        Parsolve.run ~conf ~jobs:2 ~rounds:2 ~schedule ~engine:"dynsum" pl.Pipeline.pag
          (qarr ())
      in
      let b = save_bytes r.Parsolve.summaries in
      Alcotest.(check int) (name ^ ": cache size matches sequential")
        (String.length seq_bytes) (String.length b);
      Alcotest.(check bool) (name ^ ": cache bytes identical to sequential") true
        (String.equal seq_bytes b))
    [ Parsolve.Static; Parsolve.Steal ]

(* ------------------------- trace line integrity --------------------------- *)

let test_parallel_trace_whole_lines () =
  let pl = Lazy.force pl in
  let path = Filename.temp_file "ptsto_trace" ".jsonl" in
  let w = Trace.writer_to_file path in
  (* tiny flush threshold forces many buffer handoffs to the shared writer *)
  ignore
    (Parsolve.run ~conf ~trace_writer:w ~jobs:4 ~engine:"dynsum" pl.Pipeline.pag (qarr ()));
  Trace.writer_close w;
  let ic = open_in path in
  let lines = ref 0 and starts = ref 0 and ends = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       if
         not
           (String.length line > 1
           && line.[0] = '{'
           && line.[String.length line - 1] = '}'
           && contains line "\"ev\":")
       then Alcotest.failf "mangled trace line %d: %s" !lines line;
       if contains line "\"ev\":\"query_start\"" then incr starts;
       if contains line "\"ev\":\"query_end\"" then incr ends
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "one query_start per query" (Array.length (qarr ())) !starts;
  Alcotest.(check int) "one query_end per query" (Array.length (qarr ())) !ends

(* ------------------------ hash-cons domain-locality ------------------------ *)

let test_hstack_rebase_across_domains () =
  let foreign = Domain.join (Domain.spawn (fun () -> Hstack.of_list [ 3; 1; 4; 1 ])) in
  (* reading a foreign stack is fine; rebase re-interns it locally *)
  let r = Hstack.rebase foreign in
  Alcotest.(check (list int)) "symbols survive the crossing" [ 3; 1; 4; 1 ] (Hstack.to_list r);
  Alcotest.(check bool) "rebased stack is hash-consed in this domain" true
    (Hstack.equal r (Hstack.of_list [ 3; 1; 4; 1 ]))

(* ------------------------------ validations ------------------------------- *)

let test_run_validations () =
  let pl = Lazy.force pl in
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Parsolve.run: jobs must be >= 1") (fun () ->
      ignore (Parsolve.run ~jobs:0 ~engine:"dynsum" pl.Pipeline.pag [||]));
  Alcotest.check_raises "rounds must be positive"
    (Invalid_argument "Parsolve.run: rounds must be >= 1") (fun () ->
      ignore (Parsolve.run ~rounds:0 ~engine:"dynsum" pl.Pipeline.pag [||]));
  (match Parsolve.run ~engine:"nosuch" pl.Pipeline.pag [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown engine accepted");
  let unfrozen = Pag.create pl.Pipeline.prog in
  Alcotest.check_raises "unfrozen PAG rejected"
    (Invalid_argument "Pag.packed: call Pag.freeze first") (fun () ->
      ignore (Parsolve.run ~engine:"dynsum" unfrozen [||]))

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        List.map
          (fun name ->
            Alcotest.test_case (name ^ " jobs 1/2/4") `Quick (test_engine_jobs_equal name))
          (Engine.names ())
        @ [ Alcotest.test_case "dynsum jobs=2 rounds=3" `Quick test_rounds_equal ] );
      ( "scheduler",
        [
          Alcotest.test_case "steal accounting" `Quick test_steal_accounting;
          Alcotest.test_case "schedule_of_string" `Quick test_schedule_of_string;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "merge preserves answers" `Quick test_snapshot_merge_preserves_answers;
          Alcotest.test_case "union idempotent" `Quick test_snapshot_union_is_idempotent;
          Alcotest.test_case "cache bytes schedule-independent" `Quick
            test_cache_bytes_schedule_independent;
        ] );
      ("trace", [ Alcotest.test_case "whole lines only" `Quick test_parallel_trace_whole_lines ]);
      ("hstack", [ Alcotest.test_case "rebase across domains" `Quick test_hstack_rebase_across_domains ]);
      ("validation", [ Alcotest.test_case "argument checks" `Quick test_run_validations ]);
    ]

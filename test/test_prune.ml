(* Andersen-guided pruning: the --prune flag must be invisible in every
   answer. Covers the ISSUE's acceptance criteria directly:

   - the installed oracle agrees with the Andersen solver it was packed
     from (and the row predicates agree with each other);
   - all four engines return identical outcomes with pruning on vs off,
     on generated programs (QCheck) and on a committed suite benchmark;
   - the same equality holds through the parallel scheduler under
     --jobs 1/2/4;
   - DYNSUM's summary cache is byte-identical whichever way the flag is
     set (summary purity: the pruner never reaches PPTA computation). *)

module G = Pts_workload.Genprog
module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

let check = Alcotest.check

(* Generous budget: step counts legitimately differ with pruning on, so
   equality is only meaningful when both sides resolve. *)
let conf_with prune = Engine.conf ~budget_limit:2_000_000 ~prune ()

(* config generation and the memoised frontend+Andersen build live in
   the shared [Support] module *)
let config_arbitrary = Support.config_arbitrary ~name:"prune-prop"
let build = Support.build

let sample_queries pl =
  Pts_clients.Safecast.queries pl
  @ List.filteri (fun i _ -> i mod 4 = 0) (Pts_clients.Nullderef.queries pl)

(* ------------------- oracle vs the Andersen solver ------------------- *)

let prop_oracle_matches_solver =
  QCheck.Test.make ~name:"oracle rows match Solver.points_to" ~count:8 config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      let solver = pl.Pts_clients.Pipeline.solver in
      let sites = ref 0 in
      for n = 0 to Pag.node_count pag - 1 do
        if Pag.is_obj pag n then incr sites
      done;
      let sites = !sites in
      let ok = ref (Pag.has_oracle pag) in
      for n = 0 to Pag.node_count pag - 1 do
        let row = Pts_andersen.Solver.points_to solver n in
        let card = ref 0 in
        let only = ref (-1) in
        for site = 0 to sites - 1 do
          let expect = Pts_util.Bitset.mem row site in
          if expect then begin
            incr card;
            only := site
          end;
          if Pag.oracle_mem pag n site <> expect then ok := false
        done;
        if Pag.oracle_row_empty pag n <> (!card = 0) then ok := false;
        (match Pag.oracle_singleton pag n with
        | Some s ->
          if not (!card = 1 && Pts_util.Bitset.mem row s && not (Pag.site_is_summary pag s)) then
            ok := false
        | None ->
          (* a singleton row must only be withheld for summary sites *)
          if !card = 1 && not (Pag.site_is_summary pag !only) then ok := false)
      done;
      !ok)

(* ----------------- answer equality, all four engines ----------------- *)

let prop_prune_invisible =
  QCheck.Test.make ~name:"prune on/off: identical outcomes, all engines" ~count:6
    config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      List.for_all
        (fun ename ->
          let e_on = Engine.create ~conf:(conf_with true) ename pag in
          let e_off = Engine.create ~conf:(conf_with false) ename pag in
          List.for_all
            (fun q ->
              let n = q.Pts_clients.Client.q_node in
              match (e_on.Engine.points_to n, e_off.Engine.points_to n) with
              | Query.Resolved a, Query.Resolved b -> Query.Target_set.equal a b
              | Query.Exceeded, Query.Exceeded -> true
              | _ -> false)
            (sample_queries pl))
        (Engine.names ()))

(* --------------------- DYNSUM summary purity ------------------------ *)

(* The flag may skip whole queries (empty-root fast path) or worklist
   states, but it must never change the bytes of any summary that does
   get computed. When no fast path fired, the caches are byte-identical;
   [snapshot_union] sorts, so marshalled bytes are comparable. *)
let prop_dynsum_cache_pure =
  QCheck.Test.make ~name:"dynsum cache byte-identical with prune toggled" ~count:6
    config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      let run prune =
        let d = Dynsum.create ~conf:(conf_with prune) pag in
        List.iter
          (fun q -> ignore (Dynsum.points_to d q.Pts_clients.Client.q_node))
          (sample_queries pl);
        d
      in
      let d_on = run true and d_off = run false in
      let bytes d = Marshal.to_string (Dynsum.snapshot_union [ Dynsum.snapshot d ]) [] in
      if Stats.get (Dynsum.stats d_on) "oracle_empty_root" = 0
         && Stats.get (Dynsum.stats d_on) "pruned_states" = 0
      then bytes d_on = bytes d_off
      else Dynsum.summary_count d_on <= Dynsum.summary_count d_off)

(* ----------------------- a committed benchmark ----------------------- *)

(* REFINEPTS is where the match-edge cuts actually fire; pin down that
   the full (site, heap-context) answers are untouched on a suite
   program, and that pruning never costs steps. *)
let test_refinepts_suite () =
  let pl = Pts_workload.Suite.pipeline "jython" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let e_on = Engine.create ~conf:(conf_with true) "refinepts" pag in
  let e_off = Engine.create ~conf:(conf_with false) "refinepts" pag in
  let queries =
    List.filteri (fun i _ -> i mod 7 = 0) (Pts_clients.Nullderef.queries pl)
  in
  List.iter
    (fun q ->
      let n = q.Pts_clients.Client.q_node in
      match (e_on.Engine.points_to n, e_off.Engine.points_to n) with
      | Query.Resolved a, Query.Resolved b ->
        check Alcotest.bool (Printf.sprintf "targets equal at node %d" n) true
          (Query.Target_set.equal a b)
      | _ -> Alcotest.failf "query at node %d exceeded a 2M-step budget" n)
    queries;
  let on = Budget.total_steps e_on.Engine.budget in
  let off = Budget.total_steps e_off.Engine.budget in
  check Alcotest.bool "pruned run is no slower (steps)" true (on <= off);
  check Alcotest.bool "pruning fired" true (Stats.get e_on.Engine.stats "pruned_states" > 0)

(* ------------------------ parallel equality -------------------------- *)

let test_parsolve_jobs () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let qarr =
    Array.of_list
      (List.map
         (fun q -> Parsolve.query q.Pts_clients.Client.q_node)
         (Pts_clients.Nullderef.queries pl))
  in
  let baseline =
    (Parsolve.run ~conf:(conf_with false) ~jobs:1 ~engine:"dynsum" pag qarr).Parsolve.outcomes
  in
  List.iter
    (fun jobs ->
      let r = Parsolve.run ~conf:(conf_with true) ~jobs ~engine:"dynsum" pag qarr in
      Array.iteri
        (fun i o ->
          check Alcotest.bool
            (Printf.sprintf "outcome %d equal (jobs=%d, prune on)" i jobs)
            true
            (Query.equal_outcome o baseline.(i)))
        r.Parsolve.outcomes)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "prune"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_oracle_matches_solver;
          QCheck_alcotest.to_alcotest ~long:false prop_prune_invisible;
          QCheck_alcotest.to_alcotest ~long:false prop_dynsum_cache_pure;
        ] );
      ( "suite",
        [
          Alcotest.test_case "refinepts jython prune on/off" `Quick test_refinepts_suite;
          Alcotest.test_case "parsolve jobs 1/2/4 prune on/off" `Quick test_parsolve_jobs;
        ] );
    ]

(* The serve daemon: wire protocol, admission control, the
   cross-request summary tier (bounded eviction + epoch-keyed
   invalidation), and the line loop end to end.

   The load-bearing properties mirror the subsystem's acceptance bar:
   responses must be byte-identical to cold one-shot runs no matter what
   the tier did in between — hits, evictions, or an edit burst. *)

module J = Pts_core.Trace.Json
module Proto = Pts_serve.Proto
module Admit = Pts_serve.Admit
module Daemon = Pts_serve.Daemon
module Pipeline = Pts_clients.Pipeline
module G = Pts_workload.Genprog

let cfg =
  {
    G.name = "serve";
    seed = 11;
    n_elem_classes = 3;
    n_containers = 2;
    n_boxes = 2;
    n_lists = 1;
    n_factories = 2;
    n_utils = 1;
    util_chain = 3;
    n_apps = 3;
    n_globals = 2;
    churn = 2;
    null_rate = 0.3;
    bad_cast_rate = 0.3;
    shared_rate = 0.4;
    interact_rate = 0.4;
    n_taint_flows = 0;
    n_taint_clean = 0;
    n_taint_kill = 0;
    n_taint_weak = 0;
  }

(* Fresh pipeline per call — edit tests mutate the PAG in place, so the
   memoised [Support.build] pipeline must not be shared here. *)
let pipeline () = Pipeline.of_source (G.generate cfg)

let checkers () = Pts_taint.Registry.all ()

let daemon ?config () = Daemon.create ?config ~checkers:(checkers ()) (pipeline ())

let mk ?(id = J.Null) ?(client = "test") op = { Proto.rq_id = id; rq_client = client; rq_op = op }

let query ?budget ?(engine = "dynsum") ?(prune = false) client =
  mk (Proto.Query { client; engine; prune; budget })

let member_str k j =
  match J.member k j with Some v -> J.to_string v | None -> Alcotest.failf "missing %S in %s" k (J.to_string j)

let is_ok j = match J.member "ok" j with Some (J.Bool b) -> b | _ -> false

let error_code j =
  match J.member "error" j with
  | Some e -> ( match J.member "code" e with Some (J.String c) -> c | _ -> "?")
  | None -> "?"

let int_field k j =
  match J.member k j with Some (J.Int n) -> n | _ -> Alcotest.failf "missing int %S in %s" k (J.to_string j)

(* ------------------------------------------------------------------ *)
(* Json.of_string                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "-42";
      "[1,2.5,\"x\",false,null]";
      "{\"a\":[{\"b\":\"\"}],\"c\":{}}";
      "\"line\\nbreak \\\"quoted\\\"\"";
    ]
  in
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok v -> Alcotest.(check string) s s (J.to_string v)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    cases

let test_json_numbers_and_escapes () =
  (match J.of_string "10" with Ok (J.Int 10) -> () | r -> Alcotest.failf "10: %s" (match r with Ok v -> J.to_string v | Error e -> e));
  (match J.of_string "1e3" with Ok (J.Float f) -> Alcotest.(check (float 0.0)) "1e3" 1000.0 f | _ -> Alcotest.fail "1e3 not Float");
  (match J.of_string "2.5" with Ok (J.Float _) -> () | _ -> Alcotest.fail "2.5 not Float");
  match J.of_string "\"caf\\u00e9\"" with
  | Ok (J.String s) -> Alcotest.(check string) "utf8" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape"

let test_json_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok v -> Alcotest.failf "%S parsed as %s" s (J.to_string v)
      | Error e ->
        (* every error names a byte offset, so daemon logs are actionable *)
        Alcotest.(check bool) (s ^ " offset") true
          (String.exists (fun c -> c >= '0' && c <= '9') e))
    [ "{"; "{\"a\":}"; "[1,]"; "1 2"; ""; "\"unterminated"; "{\"a\" 1}"; "tru" ]

(* ------------------------------------------------------------------ *)
(* Proto                                                               *)
(* ------------------------------------------------------------------ *)

let test_proto_decode () =
  (match Proto.of_line "{\"op\":\"query\",\"client\":\"safecast\",\"id\":7}" with
  | Ok { Proto.rq_id = J.Int 7; rq_client = "default"; rq_op = Proto.Query q } ->
    Alcotest.(check string) "client" "safecast" q.client;
    Alcotest.(check string) "engine default" "dynsum" q.engine;
    Alcotest.(check bool) "prune default" false q.prune;
    Alcotest.(check bool) "budget default" true (q.budget = None)
  | Ok _ -> Alcotest.fail "decoded shape"
  | Error (c, m) -> Alcotest.failf "decode: %s %s" c m);
  (match Proto.of_line "{\"op\":\"edit\",\"edits\":3,\"seed\":9,\"client_id\":\"a\"}" with
  | Ok { Proto.rq_client = "a"; rq_op = Proto.Edit { edits = 3; seed = 9 }; _ } -> ()
  | _ -> Alcotest.fail "edit decode");
  (match Proto.of_line "not json" with
  | Error ("parse_error", _) -> ()
  | _ -> Alcotest.fail "garbage must be parse_error");
  match Proto.of_line "{\"op\":\"frobnicate\"}" with
  | Error ("bad_request", _) -> ()
  | _ -> Alcotest.fail "unknown op must be bad_request"

(* ------------------------------------------------------------------ *)
(* Admit                                                               *)
(* ------------------------------------------------------------------ *)

let test_admit_fair_share () =
  let a = Admit.create () in
  let ok l = Alcotest.(check bool) l true in
  ok "A1" (Admit.submit a ~client:"A" ~cost:1 "A1" = Ok ());
  ok "A2" (Admit.submit a ~client:"A" ~cost:1 "A2" = Ok ());
  ok "A3" (Admit.submit a ~client:"A" ~cost:1 "A3" = Ok ());
  ok "B1" (Admit.submit a ~client:"B" ~cost:1 "B1" = Ok ());
  let order = List.init 4 (fun _ -> Option.get (Admit.next a)) in
  (* round-robin across clients, FIFO within: A's flood only delays A *)
  Alcotest.(check (list string)) "drain order" [ "A1"; "B1"; "A2"; "A3" ] order;
  Alcotest.(check bool) "idle" true (Admit.next a = None)

let test_admit_capacity_and_cost () =
  let a = Admit.create ~capacity:2 ~max_cost:10 () in
  Alcotest.(check bool) "fits" true (Admit.submit a ~client:"A" ~cost:10 1 = Ok ());
  (match Admit.submit a ~client:"A" ~cost:11 2 with
  | Error ("oversized", _) -> ()
  | _ -> Alcotest.fail "cost above ceiling must be oversized");
  Alcotest.(check bool) "fits2" true (Admit.submit a ~client:"B" ~cost:1 3 = Ok ());
  (match Admit.submit a ~client:"C" ~cost:1 4 with
  | Error ("overloaded", _) -> ()
  | _ -> Alcotest.fail "full queue must be overloaded");
  Alcotest.(check int) "accepted" 2 (Admit.accepted a);
  Alcotest.(check int) "oversized" 1 (Admit.rejected_oversized a);
  Alcotest.(check int) "overloaded" 1 (Admit.rejected_overloaded a)

(* ------------------------------------------------------------------ *)
(* Daemon request handling                                             *)
(* ------------------------------------------------------------------ *)

let test_bad_requests () =
  let d = daemon () in
  let code rq = error_code (Daemon.handle d rq) in
  Alcotest.(check string) "unknown client" "bad_request" (code (query "nosuchclient"));
  Alcotest.(check string) "unknown engine" "bad_request" (code (query ~engine:"nosuch" "safecast"));
  (* the rejection must carry the registry-derived list, so a newly
     registered engine shows up without touching the daemon *)
  (match J.member "error" (Daemon.handle d (query ~engine:"nosuch" "safecast")) with
  | Some e ->
    let msg = match J.member "msg" e with Some (J.String m) -> m | _ -> "" in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    List.iter
      (fun n ->
        Alcotest.(check bool) (Printf.sprintf "lists %s" n) true (contains msg n))
      (Pts_core.Engine.names ())
  | None -> Alcotest.fail "unknown engine must produce an error object");
  Alcotest.(check string) "bad budget" "bad_request" (code (query ~budget:0 "safecast"));
  let capped = { Daemon.default_config with Daemon.c_max_budget = 100 } in
  let d2 = daemon ~config:capped () in
  Alcotest.(check string) "budget ceiling" "budget_too_large"
    (error_code (Daemon.handle d2 (query ~budget:1000 "safecast")));
  Alcotest.(check bool) "at ceiling ok" true (is_ok (Daemon.handle d2 (query ~budget:100 "safecast")))

let test_stats_and_shutdown () =
  let d = daemon () in
  ignore (Daemon.handle d (query "safecast"));
  let st = Daemon.handle d (mk Proto.Stats) in
  Alcotest.(check bool) "stats ok" true (is_ok st);
  Alcotest.(check int) "one query counted" 1 (int_field "query" (Option.get (J.member "requests" st)));
  Alcotest.(check bool) "base health present" true (J.member "base" st <> None);
  Alcotest.(check bool) "not shutting down" false (Daemon.shutting_down d);
  Alcotest.(check bool) "shutdown ok" true (is_ok (Daemon.handle d (mk Proto.Shutdown)));
  Alcotest.(check bool) "shutting down" true (Daemon.shutting_down d)

let test_check_request () =
  let d = daemon () in
  let all = Daemon.handle d (mk (Proto.Check { checkers = []; engine = "dynsum"; prune = false; budget = None })) in
  Alcotest.(check bool) "check ok" true (is_ok all);
  let named =
    Daemon.handle d (mk (Proto.Check { checkers = [ "NullDeref" ]; engine = "dynsum"; prune = false; budget = None }))
  in
  Alcotest.(check bool) "named ok (case-insensitive)" true (is_ok named);
  Alcotest.(check bool) "named subset" true (int_field "points" named <= int_field "points" all);
  match
    Daemon.handle d (mk (Proto.Check { checkers = [ "nosuch" ]; engine = "dynsum"; prune = false; budget = None }))
  with
  | r -> Alcotest.(check string) "unknown checker" "bad_request" (error_code r)

(* ------------------------------------------------------------------ *)
(* The cross-request tier: eviction and invalidation                   *)
(* ------------------------------------------------------------------ *)

(* Flooding a tiny tier must stay within the bound, actually evict, and
   never change a single verdict byte: evicted summaries are re-derived,
   not lost. *)
let test_eviction_bounded_and_byte_identical () =
  let unbounded = daemon () in
  let tiny = daemon ~config:{ Daemon.default_config with Daemon.c_base_capacity = 32 } () in
  let requests =
    List.concat_map
      (fun (key, _) -> [ query ~prune:false key; query ~prune:true key ])
      Daemon.clients
  in
  for pass = 1 to 3 do
    List.iter
      (fun rq ->
        let a = Daemon.handle unbounded rq in
        let b = Daemon.handle tiny rq in
        Alcotest.(check string)
          (Printf.sprintf "pass %d verdict bytes" pass)
          (member_str "verdicts" a) (member_str "verdicts" b))
      requests;
    let cap = Pts_core.Dynsum.base_capacity (Daemon.base tiny) in
    Alcotest.(check bool) "bounded" true (Pts_core.Dynsum.base_length (Daemon.base tiny) <= cap)
  done;
  Alcotest.(check bool) "flood evicted" true (Pts_core.Dynsum.base_evictions (Daemon.base tiny) > 0);
  Alcotest.(check bool) "unbounded never evicts" true
    (Pts_core.Dynsum.base_evictions (Daemon.base unbounded) = 0)

(* An edit burst must drop only the footprint-dirty tier entries — and
   post-edit answers must equal a fresh daemon built on an identically
   edited pipeline (epoch-keyed invalidation is exactly sufficient). *)
let test_edit_invalidation () =
  let d = daemon () in
  let warm () = List.iter (fun (key, _) -> ignore (Daemon.handle d (query key))) Daemon.clients in
  warm ();
  let before = Pts_core.Dynsum.base_length (Daemon.base d) in
  Alcotest.(check bool) "tier warmed" true (before > 0);
  let resp = Daemon.handle d (mk (Proto.Edit { edits = 5; seed = 23 })) in
  Alcotest.(check bool) "edit ok" true (is_ok resp);
  Alcotest.(check int) "epoch bumped" 1 (int_field "epoch" resp);
  let dropped = int_field "summaries_dropped" resp in
  let retained = int_field "summaries_retained" resp in
  Alcotest.(check int) "dropped + retained = before" before (dropped + retained);
  Alcotest.(check bool) "targeted, not a wipe" true (retained > 0);
  (* replay the same burst on a fresh pipeline through its own Incr *)
  let reference = pipeline () in
  let ref_incr = Pts_core.Incr.create reference.Pipeline.pag in
  let burst = Pts_workload.Editscript.burst (Pts_util.Prng.create 23) reference.Pipeline.pag ~n:5 in
  ignore (Pts_core.Incr.apply ref_incr burst);
  let fresh = Daemon.create ~checkers:(checkers ()) reference in
  List.iter
    (fun (key, _) ->
      let a = Daemon.handle d (query key) in
      let b = Daemon.handle fresh (query key) in
      Alcotest.(check string) (key ^ " post-edit bytes") (member_str "verdicts" b) (member_str "verdicts" a))
    Daemon.clients

(* ------------------------------------------------------------------ *)
(* The line loop                                                       *)
(* ------------------------------------------------------------------ *)

let test_serve_channel () =
  let d = daemon () in
  let infile = Filename.temp_file "serve_in" ".jsonl" in
  let outfile = Filename.temp_file "serve_out" ".jsonl" in
  let oc = open_out infile in
  output_string oc
    "{\"op\":\"stats\",\"id\":1}\n\
     {\"op\":\"query\",\"client\":\"safecast\",\"id\":2}\n\
     this is not json\n\
     {\"op\":\"shutdown\",\"id\":3}\n";
  close_out oc;
  let ic = open_in infile in
  let oc = open_out outfile in
  Daemon.serve_channel d ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in outfile in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove infile;
  Sys.remove outfile;
  let lines = List.rev !lines in
  Alcotest.(check int) "one response per request" 4 (List.length lines);
  let parse l = match J.of_string l with Ok v -> v | Error e -> Alcotest.failf "response %S: %s" l e in
  let r = List.map parse lines in
  Alcotest.(check bool) "stats answered" true (is_ok (List.nth r 0));
  Alcotest.(check string) "id echoed" "1" (member_str "id" (List.nth r 0));
  Alcotest.(check bool) "query answered" true (is_ok (List.nth r 1));
  Alcotest.(check string) "garbage rejected" "parse_error" (error_code (List.nth r 2));
  Alcotest.(check bool) "shutdown acknowledged" true (is_ok (List.nth r 3));
  Alcotest.(check bool) "loop stopped" true (Daemon.shutting_down d)

(* Verdict objects from the loop must match direct [handle] calls byte
   for byte on a daemon in the same state (the loop adds nothing; the
   envelope's wall_seconds is the one timing-bearing field). *)
let test_serve_channel_bytes_match_handle () =
  let line = "{\"op\":\"query\",\"client\":\"nullderef\",\"engine\":\"dynsum\"}" in
  let via_channel =
    let d = daemon () in
    let infile = Filename.temp_file "serve_in" ".jsonl" in
    let outfile = Filename.temp_file "serve_out" ".jsonl" in
    let oc = open_out infile in
    output_string oc (line ^ "\n");
    close_out oc;
    let ic = open_in infile in
    let oc = open_out outfile in
    Daemon.serve_channel d ic oc;
    close_in ic;
    close_out oc;
    let ic = open_in outfile in
    let l = input_line ic in
    close_in ic;
    Sys.remove infile;
    Sys.remove outfile;
    l
  in
  let via_handle =
    let d = daemon () in
    match Proto.of_line line with
    | Ok rq -> Daemon.handle d rq
    | Error _ -> Alcotest.fail "decode"
  in
  let channel_json = match J.of_string via_channel with Ok v -> v | Error e -> Alcotest.failf "parse: %s" e in
  Alcotest.(check string) "loop == handle verdict bytes" (member_str "verdicts" via_handle)
    (member_str "verdicts" channel_json);
  Alcotest.(check string) "same epoch" (member_str "epoch" via_handle) (member_str "epoch" channel_json)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers and escapes" `Quick test_json_numbers_and_escapes;
          Alcotest.test_case "errors carry offsets" `Quick test_json_errors;
        ] );
      ("proto", [ Alcotest.test_case "decode" `Quick test_proto_decode ]);
      ( "admit",
        [
          Alcotest.test_case "fair share" `Quick test_admit_fair_share;
          Alcotest.test_case "capacity and cost" `Quick test_admit_capacity_and_cost;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "bad requests" `Quick test_bad_requests;
          Alcotest.test_case "stats and shutdown" `Quick test_stats_and_shutdown;
          Alcotest.test_case "check" `Quick test_check_request;
        ] );
      ( "tier",
        [
          Alcotest.test_case "eviction bounded, bytes identical" `Slow test_eviction_bounded_and_byte_identical;
          Alcotest.test_case "edit invalidation targeted" `Slow test_edit_invalidation;
        ] );
      ( "loop",
        [
          Alcotest.test_case "serve_channel" `Quick test_serve_channel;
          Alcotest.test_case "loop bytes == handle bytes" `Quick test_serve_channel_bytes_match_handle;
        ] );
    ]

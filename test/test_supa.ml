(* SUPA, the flow-sensitive strong-update engine. Pins the ISSUE's
   acceptance bar directly:

   - soundness: SUPA's points-to answers are always a subset of
     NOREFINE's (the flow-insensitive baseline it filters), across prune
     on/off, on generated programs seeded with every taint shape;
   - recall: its taint verdicts never miss a ground-truth true flow,
     across prune on/off x jobs 1/2/4 — including the weak-update
     controls where a strong update would be unsound;
   - precision: the overwrite-kill shapes are NOT flagged (the
     flow-insensitive false positive SUPA exists to remove);
   - strong-update admission: [Pag.oracle_singleton] refuses array and
     loop-allocated (summary) sites;
   - edit safety: a post-freeze overlay that adds a second inflow to the
     killed box, or any store on the killed field, downgrades the strong
     update — the answer falls back to the flow-insensitive baseline. *)

module G = Pts_workload.Genprog
module Check = Pts_clients.Check
module Diag = Pts_clients.Diag
module Pipeline = Pts_clients.Pipeline
module Client = Pts_clients.Client

let check = Alcotest.check

(* Generous budget: the subset property is only meaningful when both
   engines resolve. *)
let conf_with prune = Engine.conf ~budget_limit:2_000_000 ~prune ()

(* Small configs with every taint shape present: true flows, clean
   look-alikes, overwrite kills and weak-update controls. *)
let taint_config_arbitrary =
  let gen =
    let open QCheck.Gen in
    let* cfg = Support.small_config ~name:"supa-prop" in
    let* flows = int_range 1 2 in
    let* kill = int_range 1 2 in
    let* weak = int_range 1 2 in
    return
      {
        cfg with
        G.n_taint_flows = flows;
        n_taint_clean = 1;
        n_taint_kill = kill;
        n_taint_weak = weak;
      }
  in
  QCheck.make ~print:G.describe gen

(* One frontend+Andersen run per distinct config, labels included. *)
let truth_cache : (G.config, (string * G.taint_label list) * Pipeline.t) Hashtbl.t =
  Hashtbl.create 16

let build_truth cfg =
  match Hashtbl.find_opt truth_cache cfg with
  | Some v -> v
  | None ->
    let source, labels = G.generate_with_truth cfg in
    let v = ((source, labels), Pipeline.of_source source) in
    Hashtbl.add truth_cache cfg v;
    v

let sample_queries pl =
  Pts_clients.Safecast.queries pl
  @ List.filteri (fun i _ -> i mod 4 = 0) (Pts_clients.Nullderef.queries pl)

(* ------------------- soundness: SUPA subset NOREFINE ------------------- *)

let prop_supa_subset_norefine =
  QCheck.Test.make ~name:"supa answers subset of norefine, prune on/off" ~count:5
    taint_config_arbitrary
    (fun cfg ->
      let _, pl = build_truth cfg in
      let pag = pl.Pipeline.pag in
      List.for_all
        (fun prune ->
          let supa = Engine.create ~conf:(conf_with prune) "supa" pag in
          let nore = Engine.create ~conf:(conf_with prune) "norefine" pag in
          List.for_all
            (fun q ->
              let n = q.Client.q_node in
              match (supa.Engine.points_to n, nore.Engine.points_to n) with
              | Query.Resolved a, Query.Resolved b -> Query.Target_set.subset a b
              | Query.Exceeded, _ | _, Query.Exceeded -> true)
            (sample_queries pl))
        [ false; true ])

(* ---------------- recall and precision on the checker ----------------- *)

let prop_supa_taint_verdicts =
  QCheck.Test.make ~name:"supa misses no true flow, flags no kill shape" ~count:4
    taint_config_arbitrary
    (fun cfg ->
      let (source, labels), pl = build_truth cfg in
      let spec = Pts_taint.Spec.of_source source in
      let checkers = [ Pts_taint.Checker.checker ~spec () ] in
      List.for_all
        (fun (prune, jobs) ->
          let opts =
            {
              Check.default_opts with
              Check.o_engine = "supa";
              o_jobs = jobs;
              o_conf = conf_with prune;
            }
          in
          let report = Check.run ~opts ~checkers pl in
          let flagged m =
            List.exists (fun d -> String.equal d.Diag.d_method m) report.Check.r_diags
          in
          List.for_all
            (fun l ->
              if l.G.tl_tainted then flagged l.G.tl_method
              else not (flagged l.G.tl_method))
            labels)
        [ (false, 1); (false, 2); (false, 4); (true, 1); (true, 2); (true, 4) ])

(* -------------- strong-update admission: summary sites ---------------- *)

let summary_src =
  String.concat "\n"
    [
      "class Box { Object slot; Box() {} }";
      "class Main {";
      "  static void main() {";
      "    Object[] arr = new Object[4];";
      "    Box c = new Box();";
      "    Box d = null;";
      "    for (int i = 0; i < 2; i = i + 1) { d = new Box(); }";
      "  }";
      "}";
    ]

let sites_of pl engine_name var =
  let pag = pl.Pipeline.pag in
  let e = Engine.create ~conf:(conf_with false) engine_name pag in
  match e.Engine.points_to (Pipeline.find_local_any pl ~var) with
  | Query.Resolved ts -> Query.sites ts
  | Query.Exceeded -> Alcotest.failf "query on %s exceeded" var

let test_oracle_refuses_summary () =
  let pl = Pipeline.of_source summary_src in
  let pag = pl.Pipeline.pag in
  let prog = pl.Pipeline.prog in
  (* arr: a single-site row, but the site is an array object *)
  (match sites_of pl "norefine" "arr" with
  | [ s ] ->
    check Alcotest.bool "array site is summary" true (Pag.site_is_summary pag s);
    check Alcotest.bool "array singleton refused" true
      (Pag.oracle_singleton pag (Pipeline.find_local_any pl ~var:"arr") = None)
  | sites -> Alcotest.failf "arr should have one site, got %d" (List.length sites));
  (* c: a plain unconditional alloc — the admissible case *)
  (match sites_of pl "norefine" "c" with
  | [ s ] ->
    check Alcotest.bool "plain site not summary" false (Pag.site_is_summary pag s);
    check Alcotest.bool "plain singleton admitted" true
      (Pag.oracle_singleton pag (Pipeline.find_local_any pl ~var:"c") = Some s)
  | sites -> Alcotest.failf "c should have one site, got %d" (List.length sites));
  (* d: the loop-allocated box abstracts many runtime objects *)
  let d_sites = sites_of pl "norefine" "d" in
  let loop_sites =
    List.filter (fun s -> not prog.Ir.allocs.(s).Ir.alloc_is_null) d_sites
  in
  check Alcotest.bool "loop alloc present" false (loop_sites = []);
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "loop site %d is summary" s) true
        (Pag.site_is_summary pag s))
    loop_sites;
  check Alcotest.bool "loop singleton refused" true
    (Pag.oracle_singleton pag (Pipeline.find_local_any pl ~var:"d") = None)

(* ------------- the kill shape, and its overlay downgrades ------------- *)

let kill_src =
  String.concat "\n"
    [
      "class Secret { Secret() {} }";
      "class Item { Item() {} }";
      "class Box { Object slot; Box() {} }";
      "class Main {";
      "  static void main() {";
      "    Box b = new Box();";
      "    Object s = new Secret();";
      "    b.slot = s;";
      "    Object c = new Item();";
      "    b.slot = c;";
      "    Object out = b.slot;";
      "  }";
      "}";
    ]

(* [out] under SUPA must hold only the Item: the second store strongly
   kills the Secret. NOREFINE keeps both. *)
let test_supa_strong_update () =
  let pl = Pipeline.of_source kill_src in
  let pag = pl.Pipeline.pag in
  let supa = Engine.create ~conf:(conf_with false) "supa" pag in
  let out = Pipeline.find_local_any pl ~var:"out" in
  let secret = match sites_of pl "norefine" "s" with
    | [ s ] -> s
    | _ -> Alcotest.fail "s should have one site"
  in
  let nore_sites = sites_of pl "norefine" "out" in
  check Alcotest.bool "norefine keeps the killed secret" true (List.mem secret nore_sites);
  (match supa.Engine.points_to out with
  | Query.Resolved ts ->
    let sites = Query.sites ts in
    check Alcotest.bool "supa kills the secret" false (List.mem secret sites);
    check Alcotest.bool "supa still strictly smaller" true
      (List.length sites < List.length nore_sites)
  | Query.Exceeded -> Alcotest.fail "supa exceeded on the kill shape");
  check Alcotest.bool "strong update recorded" true
    (Pts_util.Stats.get supa.Engine.stats "strong_updates" > 0)

(* Any overlay store on the killed field is invisible to the IR scan, so
   SUPA must fall back to the flow-insensitive answer. *)
let test_supa_field_overlay_downgrade () =
  let pl = Pipeline.of_source kill_src in
  let pag = pl.Pipeline.pag in
  let out = Pipeline.find_local_any pl ~var:"out" in
  let s_node = Pipeline.find_local_any pl ~var:"s" in
  let secret = match sites_of pl "norefine" "s" with
    | [ s ] -> s
    | _ -> Alcotest.fail "s should have one site"
  in
  let b_node = Pipeline.find_local_any pl ~var:"b" in
  let fld = match Pag.store_in pag b_node with
    | (fld, _) :: _ -> fld
    | [] -> Alcotest.fail "b should be a store base"
  in
  check Alcotest.bool "field clean before edit" true (Pag.field_overlay_clean pag fld);
  let _commit = Pag.apply_edits pag [ Pag.Eadd (Pag.Estore { base = s_node; fld; src = s_node }) ] in
  check Alcotest.bool "field dirty after edit" false (Pag.field_overlay_clean pag fld);
  let supa = Engine.create ~conf:(conf_with false) "supa" pag in
  match supa.Engine.points_to out with
  | Query.Resolved ts ->
    check Alcotest.bool "downgraded: secret is back" true (List.mem secret (Query.sites ts))
  | Query.Exceeded -> Alcotest.fail "supa exceeded after field edit"

(* A second inflow into the killed box (overlay assign edge) breaks the
   must-alias licence: the base is no longer overlay-clean, so the
   strong update is refused and the Secret survives. *)
let test_supa_inflow_overlay_downgrade () =
  let pl = Pipeline.of_source kill_src in
  let pag = pl.Pipeline.pag in
  let out = Pipeline.find_local_any pl ~var:"out" in
  let b_node = Pipeline.find_local_any pl ~var:"b" in
  let s_node = Pipeline.find_local_any pl ~var:"s" in
  let secret = match sites_of pl "norefine" "s" with
    | [ s ] -> s
    | _ -> Alcotest.fail "s should have one site"
  in
  let _commit = Pag.apply_edits pag [ Pag.Eadd (Pag.Eassign { src = s_node; dst = b_node }) ] in
  let supa = Engine.create ~conf:(conf_with false) "supa" pag in
  (match supa.Engine.points_to out with
  | Query.Resolved ts ->
    check Alcotest.bool "downgraded: secret is back" true (List.mem secret (Query.sites ts))
  | Query.Exceeded -> Alcotest.fail "supa exceeded after inflow edit");
  (* still sound vs the post-edit baseline *)
  let nore = Engine.create ~conf:(conf_with false) "norefine" pag in
  match (Engine.create ~conf:(conf_with false) "supa" pag).Engine.points_to out, nore.Engine.points_to out with
  | Query.Resolved a, Query.Resolved b ->
    check Alcotest.bool "still subset of baseline" true (Query.Target_set.subset a b)
  | _ -> Alcotest.fail "post-edit queries exceeded"

let () =
  Alcotest.run "supa"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_supa_subset_norefine;
          QCheck_alcotest.to_alcotest ~long:false prop_supa_taint_verdicts;
        ] );
      ( "admission",
        [ Alcotest.test_case "oracle refuses summary sites" `Quick test_oracle_refuses_summary ] );
      ( "strong updates",
        [
          Alcotest.test_case "kill shape strongly updated" `Quick test_supa_strong_update;
          Alcotest.test_case "field overlay downgrades" `Quick test_supa_field_overlay_downgrade;
          Alcotest.test_case "inflow overlay downgrades" `Quick test_supa_inflow_overlay_downgrade;
        ] );
    ]

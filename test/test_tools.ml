(* Tests for the tooling layer: CHA construction, alias queries,
   witnesses, DOT export. *)

let check = Alcotest.check

let pipeline src = Pts_clients.Pipeline.of_source src

(* ------------------------------- CHA -------------------------------- *)

let dispatch_src =
  {|
class A { Object m() { return new A(); } }
class B extends A { Object m() { return new B(); } }
class C extends B {}
class Main {
  static void main() {
    A x = new B();
    Object r = x.m();
  }
}|}

let test_cha_overapproximates_dispatch () =
  let prog = Frontend.compile dispatch_src in
  let _pag, cha_cg = Cha.build prog in
  let pl = Pts_clients.Pipeline.of_program prog in
  let otf_cg = pl.Pts_clients.Pipeline.callgraph in
  (* every on-the-fly edge is also a CHA edge *)
  Callgraph.iter_edges otf_cg (fun ~site ~caller ~target ->
      check Alcotest.bool "otf within CHA" true
        (List.exists
           (fun t -> t = target)
           (Callgraph.targets cha_cg site)
        || caller < 0 (* unreachable *)));
  (* CHA is strictly coarser here: the receiver's static type A admits
     A.m as a target even though only B flows in *)
  let name m = prog.Ir.methods.(m).Ir.pretty in
  let cha_targets = ref [] in
  Callgraph.iter_edges cha_cg (fun ~site:_ ~caller ~target ->
      if name caller = "Main.main" && String.length (name target) > 1 then
        cha_targets := name target :: !cha_targets);
  check Alcotest.bool "CHA includes A.m" true (List.mem "A.m" !cha_targets);
  check Alcotest.bool "CHA includes B.m" true (List.mem "B.m" !cha_targets)

let test_cha_dispatch_targets () =
  let prog = Frontend.compile dispatch_src in
  let ct = prog.Ir.ctable in
  let cls n = match Types.find_class ct n with Some c -> c | None -> Alcotest.fail "cls" in
  let names recv =
    Cha.dispatch_targets prog ~recv_cls:(cls recv) ~mname:"m"
    |> List.map (fun ms -> Types.class_name ct ms.Types.ms_class)
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.string) "from A" [ "A"; "B" ] (names "A");
  check (Alcotest.list Alcotest.string) "from B" [ "B" ] (names "B");
  check (Alcotest.list Alcotest.string) "from C inherits B.m" [ "B" ] (names "C")

let test_cha_engines_still_sound () =
  (* the demand engines run unchanged on a CHA-built PAG and stay sound
     (possibly less precise) *)
  let prog = Frontend.compile dispatch_src in
  let pag, _ = Cha.build prog in
  let dynsum = Dynsum.create pag in
  let pl = Pts_clients.Pipeline.of_program prog in
  let node = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"r" in
  (* same node ids: CHA's PAG uses the same layout *)
  match Dynsum.points_to dynsum node with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts ->
    let classes =
      Query.sites ts
      |> List.map (fun s -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(s).Ir.alloc_cls)
      |> List.sort_uniq compare
    in
    (* B.m's B is the true answer; CHA may add A.m's A but must include B *)
    check Alcotest.bool "includes the true target" true (List.mem "B" classes)

(* ------------------------------ Alias ------------------------------- *)

let alias_src =
  {|
class A {}
class Id { Object id(Object x) { return x; } }
class Main {
  static void main() {
    Id i = new Id();
    Object a = new A();
    Object b = i.id(a);
    Object c = new A();
  }
}|}

let test_alias_verdicts () =
  let pl = pipeline alias_src in
  let engine = Engine.dynsum (Dynsum.create pl.Pts_clients.Pipeline.pag) in
  let node v = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:v in
  let is_verdict = Alcotest.testable
      (fun fmt -> function
        | Alias.Must_not -> Format.pp_print_string fmt "Must_not"
        | Alias.May -> Format.pp_print_string fmt "May"
        | Alias.Unknown -> Format.pp_print_string fmt "Unknown")
      ( = )
  in
  check is_verdict "a and b alias (identity call)" Alias.May
    (Alias.may_alias engine (node "a") (node "b"));
  check is_verdict "a and c do not" Alias.Must_not
    (Alias.may_alias engine (node "a") (node "c"));
  check is_verdict "same node trivially aliases" Alias.May
    (Alias.may_alias engine (node "a") (node "a"));
  check is_verdict "site fallback agrees here" Alias.Must_not
    (Alias.may_alias_sites engine (node "a") (node "c"))

let test_alias_sites_never_more_precise () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let engine = Engine.dynsum (Dynsum.create pl.Pts_clients.Pipeline.pag) in
  let qs = Pts_clients.Safecast.queries pl in
  let nodes = List.map (fun q -> q.Pts_clients.Client.q_node) qs in
  let rec pairs = function
    | a :: b :: rest -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun (x, y) ->
      match (Alias.may_alias engine x y, Alias.may_alias_sites engine x y) with
      | Alias.May, Alias.Must_not -> Alcotest.fail "site comparison more precise than full"
      | _ -> ())
    (pairs nodes)

(* ----------------------------- Witness ------------------------------ *)

let test_witness_found () =
  let pl = Pts_workload.Figure2.pipeline () in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let s1 = Pts_workload.Figure2.s1 pl in
  let dynsum = Dynsum.create pag in
  match Dynsum.points_to dynsum s1 with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts -> (
    let site = List.hd (Query.sites ts) in
    match Witness.explain pag s1 ~site with
    | None -> Alcotest.fail "no witness for a real target"
    | Some steps ->
      check Alcotest.bool "nonempty chain" true (List.length steps >= 2);
      (* chain starts at the query *)
      check Alcotest.int "starts at query" s1 (List.hd steps).Witness.w_node;
      (* rendering produces one line per step *)
      check Alcotest.int "render lines" (List.length steps)
        (List.length (Witness.render pag steps));
      (* the final state's local summary must expose the site *)
      let last = List.nth steps (List.length steps - 1) in
      let budget = Budget.unlimited () in
      let summary =
        Ppta.compute pag Engine.default_conf budget last.Witness.w_node last.Witness.w_fstack
          last.Witness.w_state
      in
      check Alcotest.bool "last step exposes the site" true (List.mem site summary.Ppta.objs);
      ignore prog)

let test_witness_absent_site () =
  let pl = Pts_workload.Figure2.pipeline () in
  let pag = pl.Pts_clients.Pipeline.pag in
  let s1 = Pts_workload.Figure2.s1 pl in
  let s2 = Pts_workload.Figure2.s2 pl in
  let dynsum = Dynsum.create pag in
  match (Dynsum.points_to dynsum s1, Dynsum.points_to dynsum s2) with
  | Query.Resolved ts1, Query.Resolved ts2 ->
    (* s2's target is NOT derivable for s1 *)
    let alien = List.hd (Query.sites ts2) in
    check Alcotest.bool "alien not in s1" false (List.mem alien (Query.sites ts1));
    check Alcotest.bool "no witness for alien site" true (Witness.explain pag s1 ~site:alien = None)
  | _ -> Alcotest.fail "exceeded"

(* ------------------------------- DOT -------------------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_dot_pag () =
  let pl = Pts_workload.Figure2.pipeline () in
  let dot = Dot.pag pl.Pts_clients.Pipeline.pag in
  check Alcotest.bool "digraph" true (contains ~needle:"digraph pag" dot);
  check Alcotest.bool "has new edges" true (contains ~needle:"label=\"new\"" dot);
  check Alcotest.bool "has entry edges" true (contains ~needle:"entry" dot);
  check Alcotest.bool "mentions s1" true (contains ~needle:"Main.main::s1" dot)

let test_dot_truncation () =
  let pl = Pts_workload.Suite.pipeline "soot-c" in
  let dot = Dot.pag ~max_nodes:50 pl.Pts_clients.Pipeline.pag in
  check Alcotest.bool "truncated" true (contains ~needle:"truncated at 50 nodes" dot)

let test_dot_callgraph () =
  let pl =
    pipeline
      {|
class R { Object loop(int n) { if (n == 0) { return new R(); } return this.loop(n - 1); } }
class Main { static void main() { R r = new R(); Object o = r.loop(2); } }|}
  in
  let dot = Dot.callgraph pl.Pts_clients.Pipeline.prog pl.Pts_clients.Pipeline.callgraph in
  check Alcotest.bool "digraph" true (contains ~needle:"digraph callgraph" dot);
  check Alcotest.bool "recursion highlighted" true (contains ~needle:"color=red" dot);
  check Alcotest.bool "mentions R.loop" true (contains ~needle:"R.loop" dot)

let () =
  Alcotest.run "tools"
    [
      ( "cha",
        [
          Alcotest.test_case "over-approximates dispatch" `Quick test_cha_overapproximates_dispatch;
          Alcotest.test_case "dispatch targets" `Quick test_cha_dispatch_targets;
          Alcotest.test_case "engines sound on CHA PAG" `Quick test_cha_engines_still_sound;
        ] );
      ( "alias",
        [
          Alcotest.test_case "verdicts" `Quick test_alias_verdicts;
          Alcotest.test_case "site fallback conservative" `Quick test_alias_sites_never_more_precise;
        ] );
      ( "witness",
        [
          Alcotest.test_case "found" `Quick test_witness_found;
          Alcotest.test_case "absent site" `Quick test_witness_absent_site;
        ] );
      ( "dot",
        [
          Alcotest.test_case "pag" `Quick test_dot_pag;
          Alcotest.test_case "truncation" `Quick test_dot_truncation;
          Alcotest.test_case "callgraph" `Quick test_dot_callgraph;
        ] );
    ]

(* Tests for the observability layer (Trace) and the engine registry
   (Engine.registry / Engine.create) introduced with the shared kernel. *)

open Pts_core
module Stats = Pts_util.Stats

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------- JSON ------------------------------- *)

let test_json_rendering () =
  let open Trace.Json in
  check Alcotest.string "null" "null" (to_string Null);
  check Alcotest.string "bool" "true" (to_string (Bool true));
  check Alcotest.string "int" "-42" (to_string (Int (-42)));
  check Alcotest.string "float" "1.5" (to_string (Float 1.5));
  check Alcotest.string "nan is null" "null" (to_string (Float Float.nan));
  check Alcotest.string "inf is null" "null" (to_string (Float Float.infinity));
  check Alcotest.string "escaping" "\"a\\\"b\\nc\\\\d\"" (to_string (String "a\"b\nc\\d"));
  check Alcotest.string "control chars" "\"\\u0001\"" (to_string (String "\x01"));
  check Alcotest.string "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
  check Alcotest.string "obj" "{\"a\":1,\"b\":[]}"
    (to_string (Obj [ ("a", Int 1); ("b", List []) ]))

(* ------------------------------- sinks ------------------------------ *)

let sample_events =
  [
    Trace.Query_start { engine = "e"; node = 1 };
    Trace.Summary_hit { engine = "e"; node = 2 };
    Trace.Summary_hit { engine = "e"; node = 2 };
    Trace.Summary_miss { engine = "e"; node = 3 };
    Trace.Refine_pass { engine = "e"; node = 1; pass = 2 };
    Trace.Match_edge { engine = "e"; fld = 7 };
    Trace.Budget_exceeded { engine = "e"; node = 1; steps = 99 };
    Trace.Counter { engine = "e"; name = "custom"; delta = 5 };
    Trace.Query_end { engine = "e"; node = 1; resolved = true; targets = 2; steps = 10 };
  ]

let test_counting_sink () =
  let stats = Stats.create () in
  let sink = Trace.counting stats in
  List.iter (Trace.emit sink) sample_events;
  Trace.close sink;
  check Alcotest.int "queries" 1 (Stats.get stats "queries");
  check Alcotest.int "summary_hits" 2 (Stats.get stats "summary_hits");
  check Alcotest.int "summary_misses" 1 (Stats.get stats "summary_misses");
  check Alcotest.int "passes" 1 (Stats.get stats "passes");
  check Alcotest.int "match_edges" 1 (Stats.get stats "match_edges");
  check Alcotest.int "exceeded" 1 (Stats.get stats "exceeded");
  check Alcotest.int "custom counter" 5 (Stats.get stats "custom");
  (* Query_end aggregates into nothing *)
  check Alcotest.int "no query_end counter" 0 (Stats.get stats "query_end")

let test_counting_rename_is_additive () =
  let stats = Stats.create () in
  let rename = function Trace.Summary_hit _ -> Some "cache_hits" | _ -> None in
  let sink = Trace.counting ~rename stats in
  List.iter (Trace.emit sink) sample_events;
  check Alcotest.int "canonical name still bumped" 2 (Stats.get stats "summary_hits");
  check Alcotest.int "legacy name bumped too" 2 (Stats.get stats "cache_hits")

let test_tee () =
  let s1 = Stats.create () in
  let s2 = Stats.create () in
  let sink = Trace.tee (Trace.counting s1) (Trace.counting s2) in
  List.iter (Trace.emit sink) sample_events;
  Trace.close sink;
  check Alcotest.int "left sees all" 2 (Stats.get s1 "summary_hits");
  check Alcotest.int "right sees all" 2 (Stats.get s2 "summary_hits")

let test_jsonl_file_sink () =
  let path = Filename.temp_file "trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Trace.to_file path in
      List.iter (Trace.emit sink) sample_events;
      Trace.close sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check Alcotest.int "one line per event" (List.length sample_events) (List.length lines);
      List.iter
        (fun l ->
          check Alcotest.bool "looks like a json object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines;
      check Alcotest.bool "event kind present" true (contains (List.hd lines) "query_start"))

(* the sink used by engines in production must cost nothing and accept
   everything *)
let test_null_sink () =
  List.iter (Trace.emit Trace.null) sample_events;
  Trace.close Trace.null

(* ----------------------------- registry ----------------------------- *)

let figure2 () = Pts_workload.Figure2.pipeline ()

let test_registry_names () =
  check
    Alcotest.(list string)
    "paper presentation order"
    [ "norefine"; "refinepts"; "dynsum"; "stasum"; "supa" ]
    (Engine.names ())

let test_registry_find () =
  (match Engine.find "dynsum" with
  | Some s ->
    check Alcotest.string "spec name" "dynsum" s.Engine.spec_name;
    check Alcotest.bool "documented" true (String.length s.Engine.spec_doc > 0)
  | None -> Alcotest.fail "dynsum not registered");
  check Alcotest.bool "unknown name" true (Engine.find "spark" = None)

let test_registry_create_unknown_raises () =
  let pl = figure2 () in
  match Engine.create "spark" pl.Pts_clients.Pipeline.pag with
  | exception Invalid_argument msg ->
    check Alcotest.bool "message lists known engines" true (contains msg "dynsum")
  | _ -> Alcotest.fail "unknown engine accepted"

let test_registry_engines_agree () =
  (* every registered engine, built through the registry, resolves Figure 2's
     s1 to the same sites *)
  let pl = figure2 () in
  let pag = pl.Pts_clients.Pipeline.pag in
  let s1 = Pts_workload.Figure2.s1 pl in
  let outcomes =
    List.map
      (fun name ->
        let e = Engine.create name pag in
        check Alcotest.string "engine is named after its spec" name e.Engine.name;
        (name, e.Engine.points_to s1))
      (Engine.names ())
  in
  match outcomes with
  | [] -> Alcotest.fail "empty registry"
  | (_, first) :: rest ->
    check Alcotest.bool "first engine resolves" true
      (match first with Query.Resolved _ -> true | _ -> false);
    List.iter
      (fun (name, o) ->
        check Alcotest.bool (name ^ " agrees with norefine") true (Query.equal_sites first o))
      rest

let test_registry_engines_trace () =
  (* a trace sink passed through the registry observes every engine *)
  let pl = figure2 () in
  let pag = pl.Pts_clients.Pipeline.pag in
  let s1 = Pts_workload.Figure2.s1 pl in
  List.iter
    (fun name ->
      let stats = Stats.create () in
      let e = Engine.create ~trace:(Trace.counting stats) name pag in
      ignore (e.Engine.points_to s1);
      check Alcotest.bool (name ^ " emits query events") true (Stats.get stats "queries" > 0))
    (Engine.names ())

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [ Alcotest.test_case "rendering and escaping" `Quick test_json_rendering ] );
      ( "sinks",
        [
          Alcotest.test_case "counting" `Quick test_counting_sink;
          Alcotest.test_case "rename is additive" `Quick test_counting_rename_is_additive;
          Alcotest.test_case "tee" `Quick test_tee;
          Alcotest.test_case "jsonl file" `Quick test_jsonl_file_sink;
          Alcotest.test_case "null" `Quick test_null_sink;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "unknown raises" `Quick test_registry_create_unknown_raises;
          Alcotest.test_case "engines agree" `Quick test_registry_engines_agree;
          Alcotest.test_case "engines trace" `Quick test_registry_engines_trace;
        ] );
    ]

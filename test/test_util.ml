(* Unit and property tests for the utility substrate. *)

module Prng = Pts_util.Prng
module Hstack = Pts_util.Hstack
module Bitset = Pts_util.Bitset
module Digraph = Pts_util.Digraph
module Interner = Pts_util.Interner
module Table = Pts_util.Table
module Stats = Pts_util.Stats

let check = Alcotest.check

(* ------------------------------- Prng ------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let d = ref false in
  for _ = 1 to 10 do
    if Prng.next64 a <> Prng.next64 b then d := true
  done;
  check Alcotest.bool "different seeds differ" true !d

let test_prng_bounds () =
  let r = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int r 17 in
    check Alcotest.bool "in range" true (x >= 0 && x < 17);
    let y = Prng.int_in r 5 9 in
    check Alcotest.bool "int_in range" true (y >= 5 && y <= 9)
  done

let test_prng_weighted () =
  let r = Prng.create 4 in
  for _ = 1 to 200 do
    let x = Prng.weighted r [ (1, `A); (0, `B); (3, `C) ] in
    check Alcotest.bool "never zero-weight" true (x <> `B)
  done;
  Alcotest.check_raises "empty weights" (Invalid_argument "Prng.weighted: no positive weight")
    (fun () -> ignore (Prng.weighted r [ (0, `A) ]))

let test_prng_split_independent () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  check Alcotest.bool "split differs from parent" true (Prng.next64 a <> Prng.next64 b)

let test_prng_shuffle_permutes () =
  let r = Prng.create 6 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_sample () =
  let r = Prng.create 8 in
  let s = Prng.sample r 3 [ 1; 2; 3; 4; 5 ] in
  check Alcotest.int "sample size" 3 (List.length s);
  check Alcotest.int "distinct" 3 (List.length (List.sort_uniq compare s));
  check Alcotest.int "oversample clamps" 2 (List.length (Prng.sample r 10 [ 1; 2 ]))

(* ------------------------------ Hstack ------------------------------ *)

let test_hstack_basics () =
  let s = Hstack.push (Hstack.push Hstack.empty 1) 2 in
  check Alcotest.int "depth" 2 (Hstack.depth s);
  check (Alcotest.option Alcotest.int) "peek" (Some 2) (Hstack.peek s);
  check (Alcotest.list Alcotest.int) "to_list top first" [ 2; 1 ] (Hstack.to_list s);
  check Alcotest.bool "pop" true (Hstack.equal (Hstack.pop_exn s) (Hstack.push Hstack.empty 1));
  check Alcotest.bool "empty is_empty" true (Hstack.is_empty Hstack.empty);
  Alcotest.check_raises "pop empty" (Invalid_argument "Hstack.pop_exn: empty stack") (fun () ->
      ignore (Hstack.pop_exn Hstack.empty))

let test_hstack_hashconsing () =
  let a = Hstack.of_list [ 3; 2; 1 ] in
  let b = Hstack.push (Hstack.push (Hstack.push Hstack.empty 1) 2) 3 in
  check Alcotest.bool "same value is physically equal" true (a == b);
  check Alcotest.int "same id" (Hstack.id a) (Hstack.id b);
  let c = Hstack.of_list [ 3; 2 ] in
  check Alcotest.bool "distinct stacks differ" false (Hstack.equal a c)

let test_hstack_roundtrip =
  QCheck.Test.make ~name:"hstack of_list/to_list roundtrip" ~count:200
    QCheck.(list small_nat)
    (fun l -> Hstack.to_list (Hstack.of_list l) = l)

let test_hstack_push_pop =
  QCheck.Test.make ~name:"hstack push then pop is identity" ~count:200
    QCheck.(pair (list small_nat) small_nat)
    (fun (l, x) ->
      let s = Hstack.of_list l in
      match Hstack.pop (Hstack.push s x) with Some s' -> Hstack.equal s s' | None -> false)

(* ------------------------------ Bitset ------------------------------ *)

let test_bitset_basics () =
  let s = Bitset.create () in
  check Alcotest.bool "add fresh" true (Bitset.add s 5);
  check Alcotest.bool "add dup" false (Bitset.add s 5);
  ignore (Bitset.add s 100);
  ignore (Bitset.add s 1000);
  check Alcotest.bool "mem" true (Bitset.mem s 100);
  check Alcotest.bool "not mem" false (Bitset.mem s 99);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal s);
  check (Alcotest.list Alcotest.int) "to_list ascending" [ 5; 100; 1000 ] (Bitset.to_list s)

let test_bitset_union () =
  let a = Bitset.create () and b = Bitset.create () in
  ignore (Bitset.add a 1);
  ignore (Bitset.add b 2);
  ignore (Bitset.add b 300);
  check Alcotest.bool "union changes" true (Bitset.union_into ~dst:a b);
  check Alcotest.bool "union again no-op" false (Bitset.union_into ~dst:a b);
  check (Alcotest.list Alcotest.int) "union contents" [ 1; 2; 300 ] (Bitset.to_list a);
  check Alcotest.bool "subset" true (Bitset.subset b a);
  check Alcotest.bool "not subset" false (Bitset.subset a b)

let test_bitset_delta () =
  (* diff_union_into: dst grows by src, delta records only the fresh bits *)
  let dst = Bitset.create () and delta = Bitset.create () and src = Bitset.create () in
  ignore (Bitset.add dst 1);
  ignore (Bitset.add src 1);
  ignore (Bitset.add src 70);
  ignore (Bitset.add src 200);
  check Alcotest.bool "changed" true (Bitset.diff_union_into ~dst ~delta src);
  check (Alcotest.list Alcotest.int) "dst grew" [ 1; 70; 200 ] (Bitset.to_list dst);
  check (Alcotest.list Alcotest.int) "delta = fresh only" [ 70; 200 ] (Bitset.to_list delta);
  check Alcotest.bool "idempotent" false (Bitset.diff_union_into ~dst ~delta src);
  Bitset.clear delta;
  check Alcotest.int "clear empties" 0 (Bitset.cardinal delta);
  check Alcotest.bool "clear keeps capacity usable" false (Bitset.mem delta 200)

let test_bitset_inter_empty () =
  let a = Bitset.create () and b = Bitset.create () in
  check Alcotest.bool "both empty" true (Bitset.inter_empty a b);
  ignore (Bitset.add a 3);
  ignore (Bitset.add b 400);
  check Alcotest.bool "disjoint" true (Bitset.inter_empty a b);
  check Alcotest.bool "symmetric" true (Bitset.inter_empty b a);
  ignore (Bitset.add b 3);
  check Alcotest.bool "overlap" false (Bitset.inter_empty a b)

let test_bitset_choose_singleton () =
  let s = Bitset.create () in
  check (Alcotest.option Alcotest.int) "empty" None (Bitset.choose_singleton s);
  ignore (Bitset.add s 130);
  check (Alcotest.option Alcotest.int) "singleton" (Some 130) (Bitset.choose_singleton s);
  ignore (Bitset.add s 2);
  check (Alcotest.option Alcotest.int) "two bits" None (Bitset.choose_singleton s);
  (* two bits in the same word *)
  let t = Bitset.create () in
  ignore (Bitset.add t 4);
  ignore (Bitset.add t 5);
  check (Alcotest.option Alcotest.int) "two bits same word" None (Bitset.choose_singleton t)

let test_bitset_delta_model =
  QCheck.Test.make ~name:"diff_union_into agrees with a set model" ~count:100
    QCheck.(pair (list (int_bound 300)) (list (int_bound 300)))
    (fun (xs, ys) ->
      let dst = Bitset.create () and delta = Bitset.create () and src = Bitset.create () in
      List.iter (fun x -> ignore (Bitset.add dst x)) xs;
      List.iter (fun y -> ignore (Bitset.add src y)) ys;
      let changed = Bitset.diff_union_into ~dst ~delta src in
      let xs' = List.sort_uniq compare xs and ys' = List.sort_uniq compare ys in
      let fresh = List.filter (fun y -> not (List.mem y xs')) ys' in
      Bitset.to_list dst = List.sort_uniq compare (xs' @ ys')
      && Bitset.to_list delta = fresh
      && changed = (fresh <> []))

let test_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a set model" ~count:100
    QCheck.(list (int_bound 500))
    (fun xs ->
      let s = Bitset.create () in
      List.iter (fun x -> ignore (Bitset.add s x)) xs;
      Bitset.to_list s = List.sort_uniq compare xs)

(* ------------------------------ Digraph ----------------------------- *)

let test_scc_line () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  let comp, n = Digraph.scc g in
  check Alcotest.int "3 components" 3 n;
  check Alcotest.bool "distinct" true (comp.(0) <> comp.(1) && comp.(1) <> comp.(2));
  (* reverse topological numbering: successors have smaller indices *)
  check Alcotest.bool "topo order" true (comp.(0) > comp.(1) && comp.(1) > comp.(2))

let test_scc_cycle () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  Digraph.add_edge g 2 3;
  let comp, n = Digraph.scc g in
  check Alcotest.int "2 components" 2 n;
  check Alcotest.bool "cycle collapsed" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check Alcotest.bool "tail separate" true (comp.(3) <> comp.(0))

let test_scc_self_loop () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 0;
  Digraph.add_edge g 0 1;
  let comp, n = Digraph.scc g in
  check Alcotest.int "2 components" 2 n;
  check Alcotest.bool "self loop own comp" true (comp.(0) <> comp.(1))

let test_reachable () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 2 3;
  let r = Digraph.reachable_from g [ 0 ] in
  check Alcotest.bool "reaches 1" true r.(1);
  check Alcotest.bool "misses 3" false r.(3)

(* SCC property check against a brute-force model: u and v share a
   component iff each reaches the other. *)
let test_scc_model =
  QCheck.Test.make ~name:"scc agrees with mutual reachability" ~count:60
    QCheck.(pair (int_range 2 9) (small_list (pair (int_bound 8) (int_bound 8))))
    (fun (n, edges) ->
      let g = Digraph.create () in
      Digraph.ensure_node g (n - 1);
      List.iter (fun (u, v) -> if u < n && v < n then Digraph.add_edge g u v) edges;
      let comp, _ = Digraph.scc g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let ru = Digraph.reachable_from g [ u ] in
        for v = 0 to n - 1 do
          let rv = Digraph.reachable_from g [ v ] in
          let mutual = ru.(v) && rv.(u) in
          if (comp.(u) = comp.(v)) <> mutual then ok := false
        done
      done;
      !ok)

let test_digraph_dedup () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  check Alcotest.int "edges deduped" 1 (List.length (Digraph.succ g 0))

(* ----------------------------- Interner ----------------------------- *)

let test_interner () =
  let t = Interner.create () in
  let a = Interner.intern t "foo" in
  let b = Interner.intern t "bar" in
  check Alcotest.int "dense ids" 0 a;
  check Alcotest.int "dense ids 2" 1 b;
  check Alcotest.int "idempotent" a (Interner.intern t "foo");
  check Alcotest.string "name roundtrip" "bar" (Interner.name t b);
  check Alcotest.int "size" 2 (Interner.size t);
  check (Alcotest.option Alcotest.int) "find" (Some 0) (Interner.find t "foo");
  check (Alcotest.option Alcotest.int) "find missing" None (Interner.find t "baz")

(* ------------------------------- Table ------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" [ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check Alcotest.bool "mentions alpha" true (contains ~needle:"alpha" s);
  check Alcotest.bool "aligned right" true (contains ~needle:" 1 " s);
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_formats () =
  check Alcotest.string "pct" "87.3%" (Table.fmt_pct 0.873);
  check Alcotest.string "k" "16.6" (Table.fmt_k 16600);
  check Alcotest.string "speedup" "1.95x" (Table.fmt_speedup 1.95);
  check Alcotest.string "float" "2.28" (Table.fmt_float 2.284)

(* ------------------------------- Stats ------------------------------ *)

let test_stats () =
  let s = Stats.create () in
  Stats.bump s "a";
  Stats.bump s "a";
  Stats.add s "b" 5;
  check Alcotest.int "bump" 2 (Stats.get s "a");
  check Alcotest.int "add" 5 (Stats.get s "b");
  check Alcotest.int "missing" 0 (Stats.get s "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "to_list sorted"
    [ ("a", 2); ("b", 5) ]
    (Stats.to_list s)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "sample" `Quick test_prng_sample;
        ] );
      ( "hstack",
        [
          Alcotest.test_case "basics" `Quick test_hstack_basics;
          Alcotest.test_case "hashconsing" `Quick test_hstack_hashconsing;
          QCheck_alcotest.to_alcotest test_hstack_roundtrip;
          QCheck_alcotest.to_alcotest test_hstack_push_pop;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "union" `Quick test_bitset_union;
          Alcotest.test_case "delta union" `Quick test_bitset_delta;
          Alcotest.test_case "inter_empty" `Quick test_bitset_inter_empty;
          Alcotest.test_case "choose_singleton" `Quick test_bitset_choose_singleton;
          QCheck_alcotest.to_alcotest test_bitset_model;
          QCheck_alcotest.to_alcotest test_bitset_delta_model;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "scc line" `Quick test_scc_line;
          Alcotest.test_case "scc cycle" `Quick test_scc_cycle;
          Alcotest.test_case "scc self loop" `Quick test_scc_self_loop;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "dedup" `Quick test_digraph_dedup;
          QCheck_alcotest.to_alcotest test_scc_model;
        ] );
      ("interner", [ Alcotest.test_case "basics" `Quick test_interner ]);
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ("stats", [ Alcotest.test_case "basics" `Quick test_stats ]);
    ]

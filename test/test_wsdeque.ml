(* The work-stealing deque and the cost model under it.

   Wsdeque's contract is small enough to pin exactly: single-owner
   push/pop at the bottom, any-domain steal at the top. Sequentially
   (one domain, no races) every operation must agree with the obvious
   two-ended list model — that is the linearizable behaviour, checked
   against random op sequences. Concurrently, the one property the
   scheduler relies on is no-loss/no-duplication: every pushed element
   is taken exactly once, whichever side takes it.

   The cost model's contract is monotonicity (a larger oracle row never
   predicts cheaper) plus the empty-row fast path — ranking is all the
   scheduler consumes, so that is all we pin. *)

module Suite = Pts_workload.Suite
module Pipeline = Pts_clients.Pipeline

(* ----------------------- model-based sequential ---------------------- *)

type op = Push of int | Pop | Steal

let op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun x -> Push x) (int_bound 1000)); (2, return Pop); (2, return Steal) ])

let op_print = function
  | Push x -> Printf.sprintf "Push %d" x
  | Pop -> "Pop"
  | Steal -> "Steal"

let ops_arb =
  QCheck.make ~print:(QCheck.Print.list op_print)
    (QCheck.Gen.list_size (QCheck.Gen.int_bound 200) op_gen)

(* the model: a list with its back at the owner's end. push appends at
   the back, pop takes from the back, steal from the front *)
let model_apply model = function
  | Push x -> (model @ [ x ], None)
  | Pop -> (
    match List.rev model with
    | [] -> (model, None)
    | x :: rev_rest -> (List.rev rev_rest, Some x))
  | Steal -> ( match model with [] -> (model, None) | x :: rest -> (rest, Some x))

let test_sequential_model =
  QCheck.Test.make ~count:500 ~name:"sequential push/pop/steal match the list model" ops_arb
    (fun ops ->
      let q = Wsdeque.create ~capacity:2 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          let m', expect = model_apply !model op in
          model := m';
          let got =
            match op with
            | Push x ->
              Wsdeque.push q x;
              None
            | Pop -> Wsdeque.pop q
            | Steal -> Wsdeque.steal q
          in
          got = expect && Wsdeque.size q = List.length !model)
        ops)

(* ----------------------- concurrent no-loss/no-dup ------------------- *)

(* Pre-seed the deque exactly the way Parsolve does, then let the owner
   pop while several thief domains steal. Every element must be taken by
   exactly one party. The elements are distinct ints so a multiset check
   is a sorted-list equality. *)
let test_multi_thief () =
  let n = 10_000 and thieves = 3 in
  let q = Wsdeque.create () in
  for i = 0 to n - 1 do
    Wsdeque.push q i
  done;
  let thief () =
    let taken = ref [] in
    let rec go () =
      match Wsdeque.steal q with
      | Some v ->
        taken := v :: !taken;
        go ()
      | None -> if Wsdeque.size q > 0 then go () (* lost a race, not empty *)
    in
    go ();
    !taken
  in
  let doms = Array.init thieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  let rec own () =
    match Wsdeque.pop q with
    | Some v ->
      mine := v :: !mine;
      own ()
    | None -> ()
  in
  own ();
  let stolen = Array.to_list doms |> List.concat_map Domain.join in
  let all = List.sort compare (!mine @ stolen) in
  Alcotest.(check int) "every element taken exactly once" n (List.length all);
  Alcotest.(check bool) "no duplicates, no losses" true (all = List.init n Fun.id);
  Alcotest.(check int) "deque drained" 0 (Wsdeque.size q)

(* owner pushing concurrently with thieves: the scheduler never does
   this mid-round, but the deque must not lose elements if it ever does *)
let test_push_race () =
  let n = 5_000 in
  let q = Wsdeque.create ~capacity:2 () in
  let thief () =
    let taken = ref [] in
    let rec go quiet =
      match Wsdeque.steal q with
      | Some v ->
        taken := v :: !taken;
        go 0
      | None ->
        (* keep scavenging for a while after the queue looks empty so we
           overlap the tail of the owner's pushes *)
        if quiet < 10_000 then go (quiet + 1)
    in
    go 0;
    !taken
  in
  let d = Domain.spawn thief in
  let mine = ref [] in
  for i = 0 to n - 1 do
    Wsdeque.push q i;
    if i mod 3 = 0 then match Wsdeque.pop q with Some v -> mine := v :: !mine | None -> ()
  done;
  let rec drain () =
    match Wsdeque.pop q with
    | Some v ->
      mine := v :: !mine;
      drain ()
    | None -> if Wsdeque.size q > 0 then drain ()
  in
  drain ();
  let stolen = Domain.join d in
  let all = List.sort compare (!mine @ stolen) in
  Alcotest.(check bool) "push race: no duplicates, no losses" true (all = List.init n Fun.id)

(* ------------------------------ cost model --------------------------- *)

let test_predict_monotone =
  QCheck.Test.make ~count:1000 ~name:"larger oracle row => not-smaller prediction"
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Costmodel.predict_of_row ~empty:false lo <= Costmodel.predict_of_row ~empty:false hi)

let test_predict_fastpath () =
  Alcotest.(check int) "empty row hits the fast-path constant" Costmodel.fastpath_cost
    (Costmodel.predict_of_row ~empty:true 12345);
  Alcotest.(check bool) "fast path is the cheapest prediction" true
    (Costmodel.fastpath_cost <= Costmodel.predict_of_row ~empty:false 0)

(* on a real PAG: predictions ranked consistently with oracle row sizes,
   and empty rows on the fast path when pruning is on *)
let test_predict_on_pag () =
  let pl = Suite.pipeline "jack" in
  let pag = pl.Pipeline.pag in
  Alcotest.(check bool) "suite pipeline carries an oracle" true (Pag.has_oracle pag);
  for n = 0 to Pag.node_count pag - 1 do
    for m = n + 1 to min (n + 7) (Pag.node_count pag - 1) do
      let rn = Pag.oracle_row_size pag n and rm = Pag.oracle_row_size pag m in
      let pn = Costmodel.predict ~prune:false pag n and pm = Costmodel.predict ~prune:false pag m in
      if rn <= rm && pn > pm then
        Alcotest.failf "rank inversion: row %d>%d predicted %d<=%d" rn rm pn pm
    done;
    if Pag.oracle_row_empty pag n then
      Alcotest.(check int)
        (Printf.sprintf "empty row of node %d on the fast path" n)
        Costmodel.fastpath_cost
        (Costmodel.predict ~prune:true pag n)
  done

let test_pearson () =
  let check_nan x = Alcotest.(check bool) "nan" true (Float.is_nan x) in
  Alcotest.(check (float 1e-9)) "perfect correlation" 1.0
    (Costmodel.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  Alcotest.(check (float 1e-9)) "perfect anticorrelation" (-1.0)
    (Costmodel.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  check_nan (Costmodel.pearson [| 1.; 1. |] [| 1.; 2. |]);
  check_nan (Costmodel.pearson [| 1. |] [| 1. |]);
  check_nan (Costmodel.pearson [||] [||]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Costmodel.pearson: length mismatch") (fun () ->
      ignore (Costmodel.pearson [| 1. |] [| 1.; 2. |]))

let () =
  Alcotest.run "wsdeque"
    [
      ( "deque",
        [
          QCheck_alcotest.to_alcotest test_sequential_model;
          Alcotest.test_case "multi-thief no-loss/no-dup" `Quick test_multi_thief;
          Alcotest.test_case "owner-push race no-loss/no-dup" `Quick test_push_race;
        ] );
      ( "costmodel",
        [
          QCheck_alcotest.to_alcotest test_predict_monotone;
          Alcotest.test_case "fast path" `Quick test_predict_fastpath;
          Alcotest.test_case "ranking on a real PAG" `Quick test_predict_on_pag;
          Alcotest.test_case "pearson" `Quick test_pearson;
        ] );
    ]
